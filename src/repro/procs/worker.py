"""The per-rank SPMD worker (runs inside each rank process).

Every rank process rebuilds its kernels and loop objects locally (kernel
closures do not pickle; the :class:`~repro.dist.plan.RankPlan` does), wires
its dats over the shared-memory segments the parent created, and executes
the canonical Airfoil timestep program
(:func:`repro.engine.airfoil.airfoil_timestep`) with real halo messages in
between. The schedule picks the program shape and the
``threads_per_rank``/schedule pair picks the executor:

========== ================ ==========================================
schedule   threads_per_rank executor
========== ================ ==========================================
blocking   1                serial (rank-per-process MPI baseline)
blocking   > 1              fork-join pool (MPI+OpenMP baseline)
overlapped 1                serial, program-ordered split loops
overlapped > 1              dependency-scheduled pool (HPX shape):
                            interior compute runs multithreaded under
                            the in-flight halo messages
========== ================ ==========================================

The split subsets partition each loop's iteration space exactly, and the
kernels/gather/scatter are byte-for-byte the single-rank machinery
(:func:`repro.backends.base.execute_loop` with an ``elements`` subset), so
every configuration assembles the same solution to rounding.
"""

from __future__ import annotations

import traceback
from dataclasses import dataclass, field
from time import perf_counter

import numpy as np

from repro.airfoil.constants import FlowConstants
from repro.airfoil.kernels import make_kernels
from repro.dist.app import RankState, build_rank_state
from repro.dist.plan import RankPlan
from repro.engine import ProgramBindings, airfoil_timestep, make_executor
from repro.hpx.threadpool import ThreadPoolEngine
from repro.obs.recorder import TraceRecorder
from repro.obs.timing import KernelTiming
from repro.op2 import OpGlobal
from repro.procs.shm import AttachedRank, RankLayout
from repro.procs.transport import HaloTransport, RankChannels
from repro.util.validate import ValidationError

#: Valid procs schedules.
SCHEDULES = ("blocking", "overlapped")


@dataclass(frozen=True)
class RankSpec:
    """Everything one rank process needs, shipped at spawn (picklable)."""

    rank: int
    plan: RankPlan
    layout: RankLayout
    constants: FlowConstants
    niter: int
    schedule: str
    #: shared monotonic epoch: all rank recorders measure against the same
    #: zero so the merged trace's lanes line up.
    epoch: float
    #: intra-rank worker threads; 1 keeps the serial per-rank path.
    threads_per_rank: int = 1
    trace: bool = False
    timing: bool = False
    trace_path: str | None = None
    #: fault injection (tests / chaos runs): raise at this iteration.
    fail_at_iter: int | None = None


@dataclass
class RankReport:
    """What a rank sends back to the driver when it finishes."""

    rank: int
    wall_seconds: float
    rms: float
    comm: dict[str, int] = field(default_factory=dict)
    #: (nbytes, latency-seconds) per received message, for calibration.
    message_log: list[tuple[int, float]] = field(default_factory=list)
    #: per-kernel wall-clock aggregates (timing mode only).
    kernels: dict[str, KernelTiming] = field(default_factory=dict)
    #: per-thread busy seconds, keyed by recorder row (0 = rank main thread).
    busy: dict[int, float] = field(default_factory=dict)
    threads: int = 1
    trace_events: int = 0


def split_boundary(rp: RankPlan) -> dict[str, np.ndarray]:
    """Boundary/interior split of one rank's iteration spaces (local ids).

    ``exterior_edges`` touch at least one halo cell and must wait for the
    imports; ``interior_edges`` see only owned rows. ``boundary_cells`` are
    the owned rows whose residual is not final until the exterior edges and
    the remote accumulation have landed: the exported rows (remote
    contributions arrive there) *plus* the owned endpoints of exterior
    edges. The latter are not always exported — a shared edge belongs to
    exactly one rank, so its owned endpoint may be a cell no neighbor ever
    imports — but their residual still includes an exterior-edge flux, so
    they must not update while the halo phase is in flight.
    ``interior_cells`` is the complement: rows only interior edges and
    boundary edges touch, free to update under the in-flight accumulation.
    """
    pecell = rp.pecell.values
    exterior_mask = (pecell >= rp.n_owned).any(axis=1)
    ext_rows = pecell[exterior_mask].ravel()
    pieces = [ext_rows[ext_rows < rp.n_owned]]
    if rp.exports:
        pieces.extend(rp.exports.values())
    boundary = np.unique(np.concatenate(pieces).astype(np.int64))
    interior = np.setdiff1d(
        np.arange(rp.n_owned, dtype=np.int64), boundary, assume_unique=True
    )
    return {
        "boundary_cells": boundary,
        "interior_cells": interior,
        "exterior_edges": np.flatnonzero(exterior_mask).astype(np.int64),
        "interior_edges": np.flatnonzero(~exterior_mask).astype(np.int64),
    }


class RankRunner:
    """One rank's engine session: program + bindings + executor."""

    def __init__(
        self,
        spec: RankSpec,
        state: RankState,
        transport: HaloTransport,
        recorder: TraceRecorder | None = None,
        pool: ThreadPoolEngine | None = None,
    ) -> None:
        if spec.schedule not in SCHEDULES:
            raise ValidationError(
                f"unknown schedule {spec.schedule!r}; use one of {SCHEDULES}"
            )
        self.spec = spec
        self.state = state
        self.transport = transport
        self.rec = recorder
        self.pool = pool
        self.program = airfoil_timestep(
            dist=True, overlap=spec.schedule == "overlapped"
        )
        self.bindings = ProgramBindings(
            loops=state.loops,
            subsets=split_boundary(spec.plan),
            arrays={"q": state.q, "adt": state.adt, "res": state.res},
            transport=transport,
            recorder=recorder,
            space_sizes={
                "cells": spec.plan.n_owned,
                "edges": spec.plan.edges_set.size,
            },
        )
        self.bindings.validate_for(self.program)
        self.executor = make_executor(spec.schedule, pool)
        self.iterations = 0

    def run(self) -> None:
        for i in range(self.spec.niter):
            if self.spec.fail_at_iter is not None and i == self.spec.fail_at_iter:
                raise RuntimeError(
                    f"injected failure on rank {self.spec.rank} at iteration {i}"
                )
            self.executor.run(self.program, self.bindings)
            self.iterations += 1


def worker_main(spec: RankSpec, channels: RankChannels, barrier, results) -> None:
    """Rank-process entry point: attach, build, synchronize, run, report.

    Any exception — including the injected test failures — is caught,
    formatted, and shipped to the driver as an ``("error", rank, tb)``
    message before the process exits nonzero; the driver cancels the peers
    and re-raises with this traceback embedded.
    """
    attached: AttachedRank | None = None
    pool: ThreadPoolEngine | None = None
    try:
        attached = AttachedRank(spec.layout)
        kernels = make_kernels(spec.constants)
        freestream = spec.constants.freestream()
        g_qinf = OpGlobal("qinf", 4, freestream)
        state = build_rank_state(
            spec.plan, kernels, g_qinf, freestream, arrays=attached.arrays
        )
        transport = HaloTransport(
            spec.rank, spec.plan.exports, spec.plan.imports, channels
        )
        rec: TraceRecorder | None = None
        if spec.trace or spec.timing:
            rec = TraceRecorder(events=spec.trace)
            rec.epoch = spec.epoch
        if spec.threads_per_rank > 1:
            pool = ThreadPoolEngine(spec.threads_per_rank)
            pool.recorder = rec
        runner = RankRunner(spec, state, transport, rec, pool)
        barrier.wait()
        t0 = perf_counter()
        runner.run()
        wall = perf_counter() - t0
        trace_events = 0
        if spec.trace_path is not None and rec is not None and rec.collect_events:
            from repro.obs.chrome import write_rank_trace

            trace_events = write_rank_trace(rec, spec.rank, spec.trace_path)
        report = RankReport(
            rank=spec.rank,
            wall_seconds=wall,
            rms=float(state.rms.value()),
            comm=transport.comm_counters(),
            message_log=transport.message_log(),
            kernels=dict(rec.kernels) if rec is not None else {},
            busy=dict(rec.summary().busy) if rec is not None else {},
            threads=spec.threads_per_rank,
            trace_events=trace_events,
        )
        results.put(("done", spec.rank, report))
    except BaseException:
        results.put(("error", spec.rank, traceback.format_exc()))
        raise SystemExit(1)
    finally:
        if pool is not None:
            pool.close()
        if attached is not None:
            attached.close()
