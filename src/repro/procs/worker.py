"""The per-rank SPMD loop runner (runs inside each rank process).

Every rank process rebuilds its kernels and loop objects locally (kernel
closures do not pickle; the :class:`~repro.dist.plan.RankPlan` does), wires
its dats over the shared-memory segments the parent created, and runs the
Airfoil timestep with real halo messages in between. Two schedules over
identical arithmetic:

- ``blocking`` — the MPI+OpenMP baseline: whole loops, bulk-synchronous
  exchanges (:meth:`~repro.procs.transport.HaloTransport.update_blocking`);
- ``overlapped`` — the HPX-dataflow shape: ``adt_calc`` runs boundary-first
  so the q/adt message posts early, interior ``res_calc`` and ``bres_calc``
  execute under the in-flight wire, and only the exterior edges wait;
  symmetrically the residual accumulation ships while the private (non
  exported) cells update.

The split subsets partition each loop's iteration space exactly, and the
kernels/gather/scatter are byte-for-byte the single-rank machinery
(:func:`repro.backends.base.execute_loop` with an ``elements`` subset), so
both schedules assemble the same solution to rounding.
"""

from __future__ import annotations

import traceback
from dataclasses import dataclass, field
from time import perf_counter

import numpy as np

from repro.airfoil.constants import FlowConstants
from repro.airfoil.kernels import make_kernels
from repro.backends.base import execute_loop
from repro.dist.app import RankState, build_rank_state
from repro.dist.plan import RankPlan
from repro.obs.recorder import TraceRecorder
from repro.obs.timing import KernelTiming
from repro.op2 import OpGlobal
from repro.procs.shm import AttachedRank, RankLayout
from repro.procs.transport import HaloTransport, RankChannels
from repro.util.validate import ValidationError

#: Valid procs schedules.
SCHEDULES = ("blocking", "overlapped")


@dataclass(frozen=True)
class RankSpec:
    """Everything one rank process needs, shipped at spawn (picklable)."""

    rank: int
    plan: RankPlan
    layout: RankLayout
    constants: FlowConstants
    niter: int
    schedule: str
    #: shared monotonic epoch: all rank recorders measure against the same
    #: zero so the merged trace's lanes line up.
    epoch: float
    trace: bool = False
    timing: bool = False
    trace_path: str | None = None
    #: fault injection (tests / chaos runs): raise at this iteration.
    fail_at_iter: int | None = None


@dataclass
class RankReport:
    """What a rank sends back to the driver when it finishes."""

    rank: int
    wall_seconds: float
    rms: float
    comm: dict[str, int] = field(default_factory=dict)
    #: (nbytes, latency-seconds) per received message, for calibration.
    message_log: list[tuple[int, float]] = field(default_factory=list)
    #: per-kernel wall-clock aggregates (timing mode only).
    kernels: dict[str, KernelTiming] = field(default_factory=dict)
    trace_events: int = 0


def split_boundary(rp: RankPlan) -> dict[str, np.ndarray]:
    """Boundary/interior split of one rank's iteration spaces (local ids).

    ``boundary_cells`` is the union of the export lists — exactly the owned
    rows whose values must be computed before the halo update can post.
    ``exterior_edges`` touch at least one halo cell and must wait for the
    imports; ``interior_edges`` see only owned rows. The cell split doubles
    as the update-loop split: remote residual contributions only ever land
    on exported rows, so ``interior_cells`` can update while the
    accumulation is still in flight.
    """
    if rp.exports:
        boundary = np.unique(np.concatenate(list(rp.exports.values())))
    else:
        boundary = np.empty(0, dtype=np.int64)
    interior = np.setdiff1d(
        np.arange(rp.n_owned, dtype=np.int64), boundary, assume_unique=True
    )
    pecell = rp.pecell.values
    exterior_mask = (pecell >= rp.n_owned).any(axis=1)
    return {
        "boundary_cells": boundary,
        "interior_cells": interior,
        "exterior_edges": np.flatnonzero(exterior_mask).astype(np.int64),
        "interior_edges": np.flatnonzero(~exterior_mask).astype(np.int64),
    }


class RankRunner:
    """One rank's timestep loop over its local state and transport."""

    def __init__(
        self,
        spec: RankSpec,
        state: RankState,
        transport: HaloTransport,
        recorder: TraceRecorder | None = None,
    ) -> None:
        if spec.schedule not in SCHEDULES:
            raise ValidationError(
                f"unknown schedule {spec.schedule!r}; use one of {SCHEDULES}"
            )
        self.spec = spec
        self.state = state
        self.transport = transport
        self.rec = recorder
        self.split = split_boundary(spec.plan)
        self.iterations = 0

    # -- instrumented primitives ---------------------------------------------

    def _loop(self, name: str, elements: np.ndarray | None = None) -> None:
        loop = self.state.loops[name]
        if elements is not None and len(elements) == 0:
            return
        if self.rec is None:
            execute_loop(loop, elements)
            return
        t0 = self.rec.now()
        execute_loop(loop, elements)
        end = self.rec.now()
        label = name if elements is None else f"{name}.part"
        self.rec.span(label, "loop", name, t0, end, busy=True)
        self.rec.record_loop(name, end - t0, 1, 1)

    def _comm(self, label: str, kind: str, fn, fields) -> None:
        if self.rec is None:
            fn(fields)
            return
        t0 = self.rec.now()
        fn(fields)
        self.rec.span(label, kind, "exchange", t0, self.rec.now())

    # -- schedules -----------------------------------------------------------

    def step_blocking(self) -> None:
        s, t = self.state, self.transport
        self._loop("save_soln")
        for _ in range(2):
            self._loop("adt_calc")
            self._comm("halo.update", "wait", t.update_blocking, [s.q, s.adt])
            self._loop("res_calc")
            self._loop("bres_calc")
            self._comm(
                "halo.accumulate", "wait", t.accumulate_blocking, [s.res]
            )
            self._loop("update")

    def step_overlapped(self) -> None:
        s, t, sp = self.state, self.transport, self.split
        self._loop("save_soln")
        for _ in range(2):
            # Boundary adt first: its rows feed the wire immediately.
            self._loop("adt_calc", sp["boundary_cells"])
            self._comm("halo.update.start", "release", t.update_start, [s.q, s.adt])
            # Interior work proceeds under the in-flight messages.
            self._loop("adt_calc", sp["interior_cells"])
            self._loop("res_calc", sp["interior_edges"])
            self._loop("bres_calc")
            self._comm("halo.update.wait", "wait", t.update_wait, [s.q, s.adt])
            self._loop("res_calc", sp["exterior_edges"])
            # Residuals ship while the private cells update.
            self._comm(
                "halo.accumulate.start", "release", t.accumulate_start, [s.res]
            )
            self._loop("update", sp["interior_cells"])
            self._comm(
                "halo.accumulate.wait", "wait", t.accumulate_wait, [s.res]
            )
            self._loop("update", sp["boundary_cells"])

    def run(self) -> None:
        step = (
            self.step_blocking
            if self.spec.schedule == "blocking"
            else self.step_overlapped
        )
        for i in range(self.spec.niter):
            if self.spec.fail_at_iter is not None and i == self.spec.fail_at_iter:
                raise RuntimeError(
                    f"injected failure on rank {self.spec.rank} at iteration {i}"
                )
            step()
            self.iterations += 1


def worker_main(spec: RankSpec, channels: RankChannels, barrier, results) -> None:
    """Rank-process entry point: attach, build, synchronize, run, report.

    Any exception — including the injected test failures — is caught,
    formatted, and shipped to the driver as an ``("error", rank, tb)``
    message before the process exits nonzero; the driver cancels the peers
    and re-raises with this traceback embedded.
    """
    attached: AttachedRank | None = None
    try:
        attached = AttachedRank(spec.layout)
        kernels = make_kernels(spec.constants)
        freestream = spec.constants.freestream()
        g_qinf = OpGlobal("qinf", 4, freestream)
        state = build_rank_state(
            spec.plan, kernels, g_qinf, freestream, arrays=attached.arrays
        )
        transport = HaloTransport(
            spec.rank, spec.plan.exports, spec.plan.imports, channels
        )
        rec: TraceRecorder | None = None
        if spec.trace or spec.timing:
            rec = TraceRecorder(events=spec.trace)
            rec.epoch = spec.epoch
        runner = RankRunner(spec, state, transport, rec)
        barrier.wait()
        t0 = perf_counter()
        runner.run()
        wall = perf_counter() - t0
        trace_events = 0
        if spec.trace_path is not None and rec is not None and rec.collect_events:
            from repro.obs.chrome import write_rank_trace

            trace_events = write_rank_trace(rec, spec.rank, spec.trace_path)
        report = RankReport(
            rank=spec.rank,
            wall_seconds=wall,
            rms=float(state.rms.value()),
            comm=transport.comm_counters(),
            message_log=transport.message_log(),
            kernels=dict(rec.kernels) if rec is not None else {},
            trace_events=trace_events,
        )
        results.put(("done", spec.rank, report))
    except BaseException:
        results.put(("error", spec.rank, traceback.format_exc()))
        raise SystemExit(1)
    finally:
        if attached is not None:
            attached.close()
