"""``repro.procs`` — the measured rank-per-process SPMD runtime.

Where :mod:`repro.dist` *simulates* distribution (every rank's submesh
stepped inside one process, exchanges as array copies), this package runs
the same :class:`~repro.dist.plan.DistPlan` for real: one OS process per
rank, per-rank dats in named shared-memory segments, halo updates and
accumulations as actual bytes over ``multiprocessing`` pipes, with
blocking and compute-overlapped exchange schedules. Selected via
``RuntimeConfig(mode="procs", num_ranks=R)`` or the CLI's
``dist --mode procs --ranks R``.

Layering: :mod:`~repro.procs.shm` owns segment lifecycle,
:mod:`~repro.procs.transport` owns the wire, :mod:`~repro.procs.worker`
is the in-rank loop runner, :mod:`~repro.procs.driver` orchestrates.
"""

from repro.procs.driver import (
    ProcsConfig,
    ProcsError,
    ProcsResult,
    default_spawn_method,
    run_procs,
)
from repro.procs.shm import AttachedRank, RankLayout, ShmRegistry, leaked_segments
from repro.procs.transport import HaloTransport, RankChannels, build_channels
from repro.procs.worker import SCHEDULES, RankReport, RankSpec, split_boundary

__all__ = [
    "AttachedRank",
    "HaloTransport",
    "ProcsConfig",
    "ProcsError",
    "ProcsResult",
    "RankChannels",
    "RankLayout",
    "RankReport",
    "RankSpec",
    "SCHEDULES",
    "ShmRegistry",
    "build_channels",
    "default_spawn_method",
    "leaked_segments",
    "run_procs",
    "split_boundary",
]
