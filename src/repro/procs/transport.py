"""Inter-rank halo message transport over ``multiprocessing`` pipes.

The measured counterpart of :class:`repro.dist.exchange.HaloExchange`: the
same import/export lists, but each message is real bytes crossing a real OS
pipe between two rank processes. Two calling conventions over the same
channels:

- :meth:`HaloTransport.update_blocking` / :meth:`accumulate_blocking` —
  bulk-synchronous: post every send, then sit in the receives (the
  MPI+OpenMP baseline's ``MPI_Waitall`` shape);
- the :meth:`update_start`/:meth:`update_wait` (and accumulate) pairs —
  the nonblocking halves: ``*_start`` packs and posts the sends and
  returns immediately, so boundary-first schedules run interior compute
  while the bytes are in flight; ``*_wait`` drains the matching receives
  and unpacks.

Every received message is recorded as a ``(nbytes, seconds)`` observation —
send timestamp to completed receive on a cross-process monotonic clock —
which :func:`repro.dist.comm.fit_comm_model` turns back into a calibrated
alpha-beta :class:`~repro.dist.comm.CommModel`.

Wire format: an 8-byte little-endian float64 send timestamp followed by the
row-major float64 payload. Multiple fields exchanged together (q + adt) are
packed column-wise into one message per neighbor — one latency, not two.

Caveat: ``Connection.send_bytes`` blocks once the kernel socket buffer
fills (~64 KiB-200 KiB). Halo messages are a thin mesh surface, orders of
magnitude below that; a workload with megabyte halos would need a sender
thread here.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from time import monotonic
from typing import Sequence

import numpy as np

from repro.dist.plan import DistPlan
from repro.util.validate import ValidationError

#: send timestamp (monotonic seconds; system-wide on the platforms the
#: procs mode supports, so receive-side latency is meaningful).
_HEADER = struct.Struct("<d")


@dataclass
class RankChannels:
    """One rank's pipe endpoints, built by :func:`build_channels`.

    ``export_conns[s]`` talks to neighbor ``s`` holding our cells in its
    halo: we send updates on it and receive accumulations from it.
    ``import_conns[r]`` talks to the owner ``r`` of our halo cells: we
    receive updates on it and send accumulations to it.
    """

    rank: int
    export_conns: dict[int, object] = field(default_factory=dict)
    import_conns: dict[int, object] = field(default_factory=dict)

    def close(self) -> None:
        for conn in list(self.export_conns.values()) + list(
            self.import_conns.values()
        ):
            try:
                conn.close()
            except OSError:  # pragma: no cover - best-effort teardown
                pass


def build_channels(dplan: DistPlan, ctx) -> list[RankChannels]:
    """One duplex pipe per directed owner->holder halo relationship.

    ``ctx`` is a ``multiprocessing`` context; the connections are passed to
    the rank processes at spawn (pipe inheritance works under both fork and
    spawn start methods).
    """
    channels = [RankChannels(rank=r) for r in range(dplan.ranks)]
    for holder, rp in enumerate(dplan.plans):
        for owner in sorted(rp.imports):
            owner_end, holder_end = ctx.Pipe(duplex=True)
            channels[owner].export_conns[holder] = owner_end
            channels[holder].import_conns[owner] = holder_end
    return channels


@dataclass(frozen=True)
class MessageRecord:
    """One received message: calibration's raw observation."""

    kind: str  # "update" | "accumulate"
    peer: int
    nbytes: int
    latency: float  # seconds, peer's send() to our completed recv


class HaloTransport:
    """One rank's halo-exchange endpoint over its :class:`RankChannels`.

    ``exports``/``imports`` are the rank plan's local index lists: exports
    index the owned region (rows we serve to each neighbor, in the
    neighbor's import order), imports index the halo region (rows each
    owner fills for us).
    """

    def __init__(
        self,
        rank: int,
        exports: dict[int, np.ndarray],
        imports: dict[int, np.ndarray],
        channels: RankChannels,
    ) -> None:
        if channels.rank != rank:
            raise ValidationError(
                f"channels belong to rank {channels.rank}, not {rank}"
            )
        self.rank = rank
        self.exports = {int(s): np.asarray(idx) for s, idx in exports.items()}
        self.imports = {int(r): np.asarray(idx) for r, idx in imports.items()}
        self.channels = channels
        self.bytes_updated = 0
        self.bytes_accumulated = 0
        self.messages_updated = 0
        self.messages_accumulated = 0
        self.records: list[MessageRecord] = []
        self._inflight: set[str] = set()

    # -- packing ------------------------------------------------------------

    @staticmethod
    def _pack(fields: Sequence[np.ndarray], rows: np.ndarray) -> bytes:
        """Column-concatenate the ``rows`` of every field into one payload."""
        total_dim = sum(f.shape[1] for f in fields)
        buf = np.empty((len(rows), total_dim), dtype=np.float64)
        col = 0
        for f in fields:
            buf[:, col : col + f.shape[1]] = f[rows]
            col += f.shape[1]
        return _HEADER.pack(monotonic()) + buf.tobytes()

    @staticmethod
    def _unpack(
        payload: bytes, fields: Sequence[np.ndarray], nrows: int
    ) -> tuple[np.ndarray, float, int]:
        """Split one payload back into (rows matrix, latency, nbytes)."""
        (sent,) = _HEADER.unpack_from(payload)
        latency = max(0.0, monotonic() - sent)
        nbytes = len(payload) - _HEADER.size
        total_dim = sum(f.shape[1] for f in fields)
        buf = np.frombuffer(
            payload, dtype=np.float64, offset=_HEADER.size
        ).reshape(nrows, total_dim)
        return buf, latency, nbytes

    def _mark(self, kind: str, starting: bool) -> None:
        if starting:
            if kind in self._inflight:
                raise ValidationError(
                    f"{kind} exchange already in flight on rank {self.rank}"
                )
            self._inflight.add(kind)
        else:
            if kind not in self._inflight:
                raise ValidationError(
                    f"no {kind} exchange in flight on rank {self.rank}"
                )
            self._inflight.discard(kind)

    # -- owner -> halo updates ----------------------------------------------

    def update_start(self, fields: Sequence[np.ndarray]) -> None:
        """Post the owned export rows to every halo holder; returns at once."""
        self._mark("update", starting=True)
        for s in sorted(self.exports):
            payload = self._pack(fields, self.exports[s])
            self.channels.export_conns[s].send_bytes(payload)
            self.bytes_updated += len(payload) - _HEADER.size
            self.messages_updated += 1

    def update_wait(self, fields: Sequence[np.ndarray]) -> None:
        """Drain the matching receives: fill our halo rows from each owner."""
        self._mark("update", starting=False)
        for r in sorted(self.imports):
            rows = self.imports[r]
            payload = self.channels.import_conns[r].recv_bytes()
            buf, latency, nbytes = self._unpack(payload, fields, len(rows))
            col = 0
            for f in fields:
                f[rows] = buf[:, col : col + f.shape[1]]
                col += f.shape[1]
            self.records.append(MessageRecord("update", r, nbytes, latency))

    def update_blocking(self, fields: Sequence[np.ndarray]) -> None:
        """Bulk-synchronous owner->halo refresh (send all, then wait all)."""
        self.update_start(fields)
        self.update_wait(fields)

    # -- halo -> owner accumulation ------------------------------------------

    def accumulate_start(self, fields: Sequence[np.ndarray]) -> None:
        """Ship our halo partial sums to their owners and zero the halo rows."""
        self._mark("accumulate", starting=True)
        for r in sorted(self.imports):
            rows = self.imports[r]
            payload = self._pack(fields, rows)
            self.channels.import_conns[r].send_bytes(payload)
            self.bytes_accumulated += len(payload) - _HEADER.size
            self.messages_accumulated += 1
            for f in fields:
                f[rows] = 0.0

    def accumulate_wait(self, fields: Sequence[np.ndarray]) -> None:
        """Receive every neighbor's partial sums into our owned export rows."""
        self._mark("accumulate", starting=False)
        for s in sorted(self.exports):
            rows = self.exports[s]
            payload = self.channels.export_conns[s].recv_bytes()
            buf, latency, nbytes = self._unpack(payload, fields, len(rows))
            col = 0
            for f in fields:
                f[rows] += buf[:, col : col + f.shape[1]]
                col += f.shape[1]
            self.records.append(MessageRecord("accumulate", s, nbytes, latency))

    def accumulate_blocking(self, fields: Sequence[np.ndarray]) -> None:
        """Bulk-synchronous halo->owner accumulation."""
        self.accumulate_start(fields)
        self.accumulate_wait(fields)

    # -- accounting ----------------------------------------------------------

    def comm_counters(self) -> dict[str, int]:
        """Counters in the shape of ``HaloExchange.comm_counters``."""
        return {
            "messages_updated": self.messages_updated,
            "messages_accumulated": self.messages_accumulated,
            "bytes_updated": self.bytes_updated,
            "bytes_accumulated": self.bytes_accumulated,
        }

    def message_log(self, limit: int = 4096) -> list[tuple[int, float]]:
        """The (nbytes, latency) pairs calibration consumes, bounded."""
        return [(rec.nbytes, rec.latency) for rec in self.records[:limit]]
