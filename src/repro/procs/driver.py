"""Parent-side orchestrator for the rank-per-process (``procs``) runtime.

:func:`run_procs` is the measured counterpart of driving
:class:`repro.dist.app.DistAirfoil` in a single process: it builds the same
:class:`~repro.dist.plan.DistPlan`, then *actually spawns* one OS process
per rank, backs every rank's dats with shared-memory segments
(:mod:`repro.procs.shm`), wires the halo pipes
(:mod:`repro.procs.transport`), releases all ranks through a barrier, and
collects per-rank reports over a queue. The global solution is assembled
straight out of the shared segments — no result arrays travel through the
queue.

Failure discipline: a rank that raises ships its formatted traceback to the
parent, which terminates the peers, tears down every shared segment, and
re-raises as :class:`ProcsError` with the original rank traceback embedded.
A rank that dies without a message (SIGKILL, interpreter abort) is detected
by exit-code polling and handled the same way. Either way
``leaked_segments(result_or_error.shm_names)`` is empty afterwards.
"""

from __future__ import annotations

import multiprocessing as mp
import queue as queue_mod
from dataclasses import dataclass
from pathlib import Path
from time import monotonic, perf_counter

import numpy as np

from repro.airfoil.constants import DEFAULT_CONSTANTS, FlowConstants
from repro.airfoil.meshgen import AirfoilMesh
from repro.dist.app import make_owner
from repro.dist.comm import CommModel, fit_comm_model
from repro.dist.plan import DistPlan, build_dist_plan
from repro.obs.timing import KernelTiming, TimingSummary
from repro.procs.shm import ShmRegistry
from repro.procs.transport import build_channels
from repro.procs.worker import SCHEDULES, RankReport, RankSpec, worker_main
from repro.util.validate import ValidationError


def default_spawn_method() -> str:
    """``fork`` where the platform offers it (fast), else ``spawn``."""
    return "fork" if "fork" in mp.get_all_start_methods() else "spawn"


@dataclass(frozen=True)
class ProcsConfig:
    """One measured multi-process run.

    ``threads_per_rank > 1`` makes every rank host its own thread pool —
    the hybrid ranks×threads configuration (blocking = MPI+OpenMP baseline,
    overlapped = dependency-scheduled interior compute under in-flight halo
    messages). ``spawn_method=None`` picks :func:`default_spawn_method`.
    ``trace_dir`` enables per-rank span recording; the driver merges the
    rank files into ``<trace_dir>/trace.json`` (one Chrome-trace lane per
    rank thread, keyed ``rank R / thread T``). ``fail_rank``/``fail_at_iter``
    inject a failure for teardown tests.
    """

    ranks: int = 2
    niter: int = 5
    schedule: str = "blocking"
    threads_per_rank: int = 1
    partitioner: str = "rcb"
    spawn_method: str | None = None
    constants: FlowConstants = DEFAULT_CONSTANTS
    trace_dir: str | Path | None = None
    timing: bool = False
    fail_rank: int | None = None
    fail_at_iter: int | None = None
    #: parent-side guard: seconds to wait for rank reports before declaring
    #: the run wedged and tearing it down.
    join_timeout: float = 120.0

    def validate(self) -> None:
        if self.ranks < 1:
            raise ValidationError(f"ranks must be >= 1, got {self.ranks}")
        if self.niter < 1:
            raise ValidationError(f"niter must be >= 1, got {self.niter}")
        if self.schedule not in SCHEDULES:
            raise ValidationError(
                f"unknown schedule {self.schedule!r}; use one of {SCHEDULES}"
            )
        if self.threads_per_rank < 1:
            raise ValidationError(
                f"threads_per_rank must be >= 1, got {self.threads_per_rank}"
            )
        if self.spawn_method is not None and (
            self.spawn_method not in mp.get_all_start_methods()
        ):
            raise ValidationError(
                f"start method {self.spawn_method!r} not available here "
                f"(have {mp.get_all_start_methods()})"
            )
        if (self.fail_rank is None) != (self.fail_at_iter is None):
            raise ValidationError(
                "fail_rank and fail_at_iter must be set together"
            )
        if self.fail_rank is not None and not (0 <= self.fail_rank < self.ranks):
            raise ValidationError(
                f"fail_rank {self.fail_rank} out of range for {self.ranks} ranks"
            )
        if self.join_timeout <= 0:
            raise ValidationError("join_timeout must be positive")


class ProcsError(RuntimeError):
    """A rank failed; carries the rank and its original traceback."""

    def __init__(self, rank: int, rank_traceback: str, shm_names: tuple[str, ...]):
        super().__init__(
            f"rank {rank} failed during procs run\n"
            f"--- rank {rank} traceback ---\n{rank_traceback}"
        )
        self.rank = rank
        self.rank_traceback = rank_traceback
        #: for leak auditing: every segment name the run allocated (all
        #: unlinked by the time this error is raised).
        self.shm_names = shm_names


@dataclass
class ProcsResult:
    """Everything a measured run produced."""

    q: np.ndarray
    rms_total: float
    iterations: int
    ranks: int
    schedule: str
    threads_per_rank: int
    #: slowest rank's timestep-loop wall time — the run's critical path.
    wall_seconds: float
    reports: dict[int, RankReport]
    #: merged halo-traffic counters across ranks.
    comm: dict[str, int]
    #: alpha-beta model fitted to the observed (nbytes, latency) messages;
    #: None when no halo messages flowed (single rank).
    fitted_comm: CommModel | None
    trace_path: str | None
    shm_names: tuple[str, ...]

    def timing_summary(self) -> TimingSummary:
        """Aggregate per-kernel totals *across ranks* into one timing table.

        This is the distributed ``op_timing_output``: one row per kernel
        summed over every rank. Busy rows are keyed rank-major, thread-minor
        (rank ``r``'s thread ``t`` occupies row ``1 + r*T + t``; row 0 is
        the orchestrating parent, which does no kernel work), so hybrid runs
        attribute busy seconds per rank *thread*, not per rank.
        """
        merged: dict[str, KernelTiming] = {}
        busy: dict[int, float] = {}
        tpr = max(self.threads_per_rank, 1)
        # A hybrid rank records up to tpr + 1 rows (its main thread plus the
        # pool workers); the stride keeps rank row ranges disjoint.
        stride = tpr + 1 if tpr > 1 else 1
        for rank, rep in sorted(self.reports.items()):
            if rep.busy:
                for row, seconds in sorted(rep.busy.items()):
                    busy[1 + rank * stride + row] = seconds
            else:
                busy[1 + rank * stride] = sum(
                    kt.total for kt in rep.kernels.values()
                )
            for name, kt in rep.kernels.items():
                m = merged.get(name)
                if m is None:
                    merged[name] = m = KernelTiming(name)
                m.count += kt.count
                m.total += kt.total
                m.min = min(m.min, kt.min)
                m.max = max(m.max, kt.max)
                m.colors = max(m.colors, kt.colors)
                m.tasks += kt.tasks
                m.task_time += kt.task_time
                m.prefix_time += kt.prefix_time
                m.fold_time += kt.fold_time
        return TimingSummary(
            kernels=merged,
            wall=self.wall_seconds,
            busy=busy,
            num_workers=self.ranks * tpr,
            comm=dict(self.comm),
        )


def _assemble_q(dplan: DistPlan, registry: ShmRegistry, ncells: int) -> np.ndarray:
    """Copy every rank's owned q rows out of shared memory (pre-teardown)."""
    out = np.empty((ncells, 4))
    for rp in dplan.plans:
        out[rp.owned_cells] = registry.arrays(rp.rank)["q"][: rp.n_owned]
    return out


def run_procs(mesh: AirfoilMesh, config: ProcsConfig) -> ProcsResult:
    """Run the Airfoil timestep loop across ``config.ranks`` OS processes."""
    config.validate()
    owner = make_owner(mesh, config.ranks, config.partitioner)
    dplan = build_dist_plan(mesh, owner)
    ctx = mp.get_context(config.spawn_method or default_spawn_method())

    trace_dir: Path | None = None
    rank_files: dict[int, Path] = {}
    if config.trace_dir is not None:
        trace_dir = Path(config.trace_dir)
        trace_dir.mkdir(parents=True, exist_ok=True)
        rank_files = {r: trace_dir / f"rank{r}.json" for r in range(config.ranks)}

    registry = ShmRegistry(dplan)
    channels = build_channels(dplan, ctx)
    barrier = ctx.Barrier(config.ranks)
    results = ctx.Queue()
    epoch = perf_counter()
    procs: list[mp.process.BaseProcess] = []
    try:
        for rp in dplan.plans:
            spec = RankSpec(
                rank=rp.rank,
                plan=rp,
                layout=registry.layouts[rp.rank],
                constants=config.constants,
                niter=config.niter,
                schedule=config.schedule,
                epoch=epoch,
                threads_per_rank=config.threads_per_rank,
                trace=trace_dir is not None,
                timing=config.timing,
                trace_path=(
                    str(rank_files[rp.rank]) if trace_dir is not None else None
                ),
                fail_at_iter=(
                    config.fail_at_iter
                    if config.fail_rank == rp.rank
                    else None
                ),
            )
            p = ctx.Process(
                target=worker_main,
                args=(spec, channels[rp.rank], barrier, results),
                name=f"procs-rank{rp.rank}",
                daemon=True,
            )
            procs.append(p)
            p.start()

        reports = _collect(procs, results, config.ranks, config.join_timeout)
        if isinstance(reports, tuple):  # (failed_rank, traceback)
            rank, tb = reports
            raise ProcsError(rank, tb, registry.segment_names)

        for p in procs:
            p.join(timeout=10.0)

        q = _assemble_q(dplan, registry, mesh.cells.size)
        comm: dict[str, int] = {}
        nbytes: list[int] = []
        latencies: list[float] = []
        for rep in reports.values():
            for key, val in rep.comm.items():
                comm[key] = comm.get(key, 0) + val
            for nb, lat in rep.message_log:
                nbytes.append(nb)
                latencies.append(lat)
        fitted = fit_comm_model(nbytes, latencies) if nbytes else None

        trace_path: str | None = None
        if trace_dir is not None:
            from repro.obs.chrome import merge_rank_traces

            trace_path = str(trace_dir / "trace.json")
            merge_rank_traces(dict(rank_files), trace_path)

        return ProcsResult(
            q=q,
            rms_total=float(sum(rep.rms for rep in reports.values())),
            iterations=config.niter,
            ranks=config.ranks,
            schedule=config.schedule,
            threads_per_rank=config.threads_per_rank,
            wall_seconds=max(rep.wall_seconds for rep in reports.values()),
            reports=reports,
            comm=comm,
            fitted_comm=fitted,
            trace_path=trace_path,
            shm_names=registry.segment_names,
        )
    finally:
        # Teardown must be unconditional and complete on *every* exit path —
        # success, rank failure, driver-side exceptions and KeyboardInterrupt
        # alike — or shared-memory segments leak until reboot. Each stage is
        # isolated so a failure in one never skips the registry unlink.
        try:
            for p in procs:
                if p.is_alive():
                    p.terminate()
            for p in procs:
                p.join(timeout=10.0)
                if p.is_alive():
                    # terminate() (SIGTERM) can be absorbed by a rank stuck
                    # in uninterruptible I/O; escalate rather than leak it.
                    p.kill()
                    p.join(timeout=10.0)
        finally:
            for ch in channels:
                try:
                    ch.close()
                except OSError:
                    pass
            try:
                results.close()
            except OSError:
                pass
            registry.close()


def _collect(
    procs: list,
    results,
    ranks: int,
    join_timeout: float,
) -> dict[int, RankReport] | tuple[int, str]:
    """Drain the results queue until every rank reported or one failed.

    Returns the report map on success, or ``(rank, traceback)`` on the
    first failure — including ranks that died without posting a message
    (detected via exit-code polling) and a whole-run timeout.
    """
    pending = set(range(ranks))
    reports: dict[int, RankReport] = {}
    deadline = monotonic() + join_timeout
    while pending:
        try:
            kind, rank, payload = results.get(timeout=0.25)
        except queue_mod.Empty:
            for r in sorted(pending):
                p = procs[r]
                if not p.is_alive() and p.exitcode != 0:
                    # One more drain: the report may still be in flight.
                    try:
                        kind, rank, payload = results.get(timeout=0.25)
                    except queue_mod.Empty:
                        return (
                            r,
                            f"rank {r} exited with code {p.exitcode} "
                            "without reporting (killed?)",
                        )
                    break
            else:
                if monotonic() > deadline:
                    stuck = ",".join(str(r) for r in sorted(pending))
                    return (
                        min(pending),
                        f"timed out after {join_timeout}s waiting for "
                        f"rank(s) {stuck}",
                    )
                continue
        if kind == "done":
            reports[rank] = payload
            pending.discard(rank)
        else:
            return (rank, payload)
    return reports
