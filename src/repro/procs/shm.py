"""Shared-memory backing for per-rank dats (``mode="procs"``).

Every rank's four cell fields (``q``/``res``/``adt`` over owned+halo rows,
``qold`` over owned rows) live in named ``multiprocessing.shared_memory``
segments sized from the :class:`~repro.dist.plan.DistPlan` layout. The
parent creates and owns the segments (it unlinks them — exactly once — on
every exit path, including rank failures); each rank process attaches by
name and wraps the buffers in numpy views that
:func:`repro.dist.app.build_rank_state` turns into ordinary OpDats. After
the run the parent assembles the global solution straight out of the
segments — results never travel through a queue.

POSIX shared memory is kernel-persistent: a leaked segment outlives every
process that mapped it, so teardown discipline is the whole point of this
module. :func:`leaked_segments` lets tests prove cleanliness.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from repro.dist.plan import DistPlan, RankPlan
from repro.util.validate import ValidationError

#: The per-rank dat fields: (name, row space, columns). ``cells`` rows span
#: owned + halo; ``owned`` rows stop at the owned region.
DAT_FIELDS: tuple[tuple[str, str, int], ...] = (
    ("q", "cells", 4),
    ("qold", "owned", 4),
    ("res", "cells", 4),
    ("adt", "cells", 1),
)

_DTYPE = np.float64


def _field_rows(rp: RankPlan, space: str) -> int:
    return rp.n_owned + rp.n_halo if space == "cells" else rp.n_owned


@dataclass(frozen=True)
class SegmentSpec:
    """One named segment and the array shape mapped onto it."""

    name: str
    shape: tuple[int, int]

    @property
    def nbytes(self) -> int:
        return int(np.prod(self.shape)) * np.dtype(_DTYPE).itemsize


@dataclass(frozen=True)
class RankLayout:
    """The segment specs of one rank, keyed by field name. Picklable —
    this is what travels to the rank process instead of the arrays."""

    rank: int
    segments: dict[str, SegmentSpec]


def _untrack(shm: shared_memory.SharedMemory) -> None:
    """Detach ``shm`` from the resource tracker after a probe attach.

    Attaching re-registers the name with the (shared) tracker; a probe that
    runs *after* the owner already unlinked would leave a stale entry and
    trigger leaked-object warnings at interpreter exit. Only probes use
    this — rank processes share the parent's tracker, where the set-based
    cache already dedupes their attach-time registration, and untracking
    there would strip the parent's own entry.
    """
    try:  # pragma: no cover - tracker internals vary across versions
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:
        pass


class ShmRegistry:
    """Parent-side owner of every rank's shared segments.

    Creating the registry allocates (and zeroes) all segments up front; a
    half-failed construction unlinks whatever it managed to create before
    re-raising, so no error path can strand kernel memory. ``close()`` is
    idempotent and tolerates segments someone else already removed.
    """

    def __init__(self, dplan: DistPlan, token: str | None = None) -> None:
        self.token = token if token is not None else secrets.token_hex(4)
        self.layouts: list[RankLayout] = []
        self._segments: list[shared_memory.SharedMemory] = []
        self._arrays: list[dict[str, np.ndarray]] = []
        self._closed = False
        try:
            for rp in dplan.plans:
                specs: dict[str, SegmentSpec] = {}
                arrays: dict[str, np.ndarray] = {}
                for field, space, dim in DAT_FIELDS:
                    spec = SegmentSpec(
                        name=f"repro_{self.token}_r{rp.rank}_{field}",
                        shape=(_field_rows(rp, space), dim),
                    )
                    seg = shared_memory.SharedMemory(
                        create=True, name=spec.name, size=max(spec.nbytes, 1)
                    )
                    self._segments.append(seg)
                    arr = np.ndarray(spec.shape, dtype=_DTYPE, buffer=seg.buf)
                    arr[:] = 0.0
                    specs[field] = spec
                    arrays[field] = arr
                self.layouts.append(RankLayout(rank=rp.rank, segments=specs))
                self._arrays.append(arrays)
        except BaseException:
            self.close()
            raise

    @property
    def segment_names(self) -> tuple[str, ...]:
        """Every segment name this registry allocated (stable after close)."""
        return tuple(
            spec.name for layout in self.layouts for spec in layout.segments.values()
        )

    def arrays(self, rank: int) -> dict[str, np.ndarray]:
        """Parent-side numpy views over rank ``rank``'s segments."""
        if self._closed:
            raise ValidationError("shared-memory registry is closed")
        return self._arrays[rank]

    def close(self) -> None:
        """Release and unlink every segment. Idempotent; error-tolerant."""
        if self._closed:
            return
        self._closed = True
        self._arrays = []  # drop buffer views before closing the mappings
        for seg in self._segments:
            try:
                seg.close()
            except OSError:  # pragma: no cover - best-effort teardown
                pass
            try:
                seg.unlink()
            except FileNotFoundError:
                pass
            except OSError:  # pragma: no cover - best-effort teardown
                pass
        self._segments = []

    def __enter__(self) -> "ShmRegistry":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class AttachedRank:
    """Rank-process view of its own segments (attach-only, never unlinks)."""

    def __init__(self, layout: RankLayout) -> None:
        self.rank = layout.rank
        self._segments: list[shared_memory.SharedMemory] = []
        self.arrays: dict[str, np.ndarray] = {}
        try:
            for field, spec in layout.segments.items():
                seg = shared_memory.SharedMemory(name=spec.name)
                self._segments.append(seg)
                self.arrays[field] = np.ndarray(
                    spec.shape, dtype=_DTYPE, buffer=seg.buf
                )
        except BaseException:
            self.close()
            raise

    def close(self) -> None:
        """Unmap (but never unlink) the attached segments. Idempotent."""
        self.arrays = {}
        for seg in self._segments:
            try:
                seg.close()
            except OSError:  # pragma: no cover - best-effort teardown
                pass
        self._segments = []

    def __enter__(self) -> "AttachedRank":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def leaked_segments(names: tuple[str, ...] | list[str]) -> list[str]:
    """The subset of ``names`` still present in the OS (should be empty).

    Test helper for the cleanliness guarantee: after a run — successful or
    aborted — every name the driver reports must be gone.
    """
    leaked = []
    for name in names:
        try:
            seg = shared_memory.SharedMemory(name=name)
        except FileNotFoundError:
            continue
        _untrack(seg)
        seg.close()
        leaked.append(name)
    return leaked
